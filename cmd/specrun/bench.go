package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"specrun/internal/asm"
	"specrun/internal/attack"
	"specrun/internal/core"
	"specrun/internal/cpu"
	"specrun/internal/proggen"
	"specrun/internal/server"
)

// SimBench carries raw simulator-throughput metrics: how fast the simulator
// itself runs, independent of what it simulates.  Throughput is
// host-dependent; the allocation metrics are deterministic for a given
// binary, which is what makes them gateable across machines.
type SimBench struct {
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"` // simulated cycles per host second
	CyclesPerRun    uint64  `json:"cycles_per_run"`     // simulated cycles per benchmark program run
	AllocsPerOp     uint64  `json:"allocs_per_op"`      // heap allocations per run (steady-state, machine reuse)
	BytesPerOp      uint64  `json:"bytes_per_op"`       // heap bytes per run
	Runs            int     `json:"runs"`               // benchmark iterations measured
	Host            string  `json:"host"`               // host fingerprint; throughput gates only apply on a matching host
	// Batched simulation (cpu.Batch): BatchLanes machines advanced in
	// lockstep by one serial driver loop.  An op is one RunPrograms call over
	// all lanes, so Batch* throughput is aggregate simulated cycles across
	// the lanes per host second.
	BatchLanes           int     `json:"batch_lanes"`
	BatchSimCyclesPerSec float64 `json:"batch_sim_cycles_per_sec"`
	BatchAllocsPerOp     uint64  `json:"batch_allocs_per_op"`
	BatchBytesPerOp      uint64  `json:"batch_bytes_per_op"`
}

// BenchReport is the stable JSON document `specrun bench --json` emits: the
// Fig. 7/9/10/11 benchmark metrics of the paper, each in exactly the shape
// the corresponding POST /v1/run/{driver} endpoint returns, plus the
// simulator-throughput section.  CI uploads it as a BENCH_*.json artifact on
// every run — the repo's pinned performance trajectory.
type BenchReport struct {
	Version string    `json:"version"`
	IPC     any       `json:"ipc"`   // Fig. 7 rows + mean speedup
	Fig9    any       `json:"fig9"`  // PHT PoC probe sweep
	Fig10   any       `json:"fig10"` // N1/N2/N3 transient windows
	Fig11   any       `json:"fig11"` // beyond-the-ROB leak, both machines
	Sim     *SimBench `json:"sim,omitempty"`
}

// hostFingerprint identifies the machine well enough to decide whether two
// throughput numbers are comparable.
func hostFingerprint() string {
	model := runtime.GOOS + "/" + runtime.GOARCH
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				model += " " + strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
				break
			}
		}
	}
	return model
}

// measureSim benchmarks the steady-state simulation path (one machine,
// Reset per program — what every sweep and fuzz worker runs), then the
// batched path (`lanes` machines in lockstep — what the campaign drivers run
// with --lanes).
func measureSim(lanes int) (*SimBench, error) {
	const budget = 50_000_000
	prog := proggen.Generate(42, proggen.DefaultOptions())
	m := core.NewMachine(core.DefaultConfig(), prog)
	if err := m.Run(budget); err != nil { // warmup: size pools and pages
		return nil, err
	}
	var cycles uint64
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cycles = 0
		for i := 0; i < b.N; i++ {
			m.Reset(prog)
			if err := m.Run(budget); err != nil {
				runErr = err
				b.FailNow()
			}
			cycles += m.Stats().Cycles
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	if r.N == 0 {
		return nil, fmt.Errorf("bench: simulator benchmark did not run")
	}
	sim := &SimBench{
		SimCyclesPerSec: float64(cycles) / r.T.Seconds(),
		CyclesPerRun:    cycles / uint64(r.N),
		AllocsPerOp:     uint64(r.AllocsPerOp()),
		BytesPerOp:      uint64(r.AllocedBytesPerOp()),
		Runs:            r.N,
		Host:            hostFingerprint(),
	}

	if lanes < 1 {
		lanes = 1
	}
	progs := make([]*asm.Program, lanes)
	for i := range progs {
		progs[i] = proggen.Generate(42+int64(i), proggen.DefaultOptions())
	}
	batch := cpu.NewBatch(core.DefaultConfig(), lanes)
	if errs := batch.RunPrograms(progs, budget); errs != nil { // warmup all lanes
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	rb := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cycles = 0
		for i := 0; i < b.N; i++ {
			for li, err := range batch.RunPrograms(progs, budget) {
				if err != nil {
					runErr = err
					b.FailNow()
				}
				cycles += batch.CPU(li).Stats().Cycles
			}
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	if rb.N == 0 {
		return nil, fmt.Errorf("bench: batched simulator benchmark did not run")
	}
	sim.BatchLanes = lanes
	sim.BatchSimCyclesPerSec = float64(cycles) / rb.T.Seconds()
	sim.BatchAllocsPerOp = uint64(rb.AllocsPerOp())
	sim.BatchBytesPerOp = uint64(rb.AllocedBytesPerOp())
	return sim, nil
}

// gate compares the measured simulator metrics against a committed baseline
// report and fails on regression: the allocation metrics gate on every host
// (they are properties of the binary), throughput only when the baseline was
// recorded on the same hardware.
func gate(sim *SimBench, baselinePath string, tol float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: gate baseline: %w", err)
	}
	var base BenchReport
	if err := server.Decode(data, &base); err != nil {
		return fmt.Errorf("bench: gate baseline %s: %w", baselinePath, err)
	}
	if base.Sim == nil {
		return fmt.Errorf("bench: gate baseline %s has no sim section", baselinePath)
	}
	b := base.Sim
	var fails []string
	// Small absolute slack on top of the relative tolerance so a baseline of
	// zero allocations doesn't make any single stray allocation fatal noise.
	if limit := float64(b.AllocsPerOp)*(1+tol) + 2; float64(sim.AllocsPerOp) > limit {
		fails = append(fails, fmt.Sprintf("allocs/op %d > baseline %d (+%.0f%%)", sim.AllocsPerOp, b.AllocsPerOp, tol*100))
	}
	if limit := float64(b.BytesPerOp)*(1+tol) + 256; float64(sim.BytesPerOp) > limit {
		fails = append(fails, fmt.Sprintf("bytes/op %d > baseline %d (+%.0f%%)", sim.BytesPerOp, b.BytesPerOp, tol*100))
	}
	// Batched entries gate like the single-lane ones (allocations everywhere,
	// throughput host-matched) but only at a matching lane count — aggregate
	// throughput and per-op allocations both scale with the lane count.
	if b.BatchLanes > 0 && sim.BatchLanes == b.BatchLanes {
		if limit := float64(b.BatchAllocsPerOp)*(1+tol) + 2; float64(sim.BatchAllocsPerOp) > limit {
			fails = append(fails, fmt.Sprintf("batch allocs/op %d > baseline %d (+%.0f%%)", sim.BatchAllocsPerOp, b.BatchAllocsPerOp, tol*100))
		}
		if limit := float64(b.BatchBytesPerOp)*(1+tol) + 256; float64(sim.BatchBytesPerOp) > limit {
			fails = append(fails, fmt.Sprintf("batch bytes/op %d > baseline %d (+%.0f%%)", sim.BatchBytesPerOp, b.BatchBytesPerOp, tol*100))
		}
		if sim.Host == b.Host && b.BatchSimCyclesPerSec > 0 && sim.BatchSimCyclesPerSec < b.BatchSimCyclesPerSec*(1-tol) {
			fails = append(fails, fmt.Sprintf("batch throughput %.0f sim_cycles/s < baseline %.0f (-%.0f%%)",
				sim.BatchSimCyclesPerSec, b.BatchSimCyclesPerSec, tol*100))
		}
	}
	if sim.Host == b.Host && b.SimCyclesPerSec > 0 {
		if sim.SimCyclesPerSec < b.SimCyclesPerSec*(1-tol) {
			fails = append(fails, fmt.Sprintf("throughput %.0f sim_cycles/s < baseline %.0f (-%.0f%%)",
				sim.SimCyclesPerSec, b.SimCyclesPerSec, tol*100))
		}
	} else {
		fmt.Fprintf(os.Stderr, "bench: gate: host differs from baseline (%q vs %q); throughput compared informationally only: %.0f vs %.0f sim_cycles/s\n",
			sim.Host, b.Host, sim.SimCyclesPerSec, b.SimCyclesPerSec)
	}
	if len(fails) > 0 {
		return fmt.Errorf("bench: performance gate failed vs %s:\n  %s", baselinePath, strings.Join(fails, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "bench: gate ok vs %s (allocs/op %d ≤ %d, throughput %.2fM vs %.2fM sim_cycles/s)\n",
		baselinePath, sim.AllocsPerOp, b.AllocsPerOp, sim.SimCyclesPerSec/1e6, b.SimCyclesPerSec/1e6)
	return nil
}

// runBench implements `specrun bench`: run the four benchmark drivers on the
// Table 1 machine, measure simulator throughput, and emit the metrics as one
// document.
//
//	specrun bench --json --out bench.json
//	specrun bench --json --gate bench/baseline.json
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the canonical JSON document (default: human summary)")
	out := fs.String("out", "", "output file (default stdout)")
	workers := fs.Int("workers", 0, "worker goroutines for the multi-run drivers (0 = GOMAXPROCS)")
	lanes := fs.Int("lanes", 4, "machines per lockstep batch in the batched sim benchmark")
	noSim := fs.Bool("no-sim", false, "skip the simulator-throughput benchmark (sim section)")
	gatePath := fs.String("gate", "", "baseline BENCH json; exit nonzero on performance regression against it")
	tol := fs.Float64("tolerance", 0.10, "relative regression tolerated by --gate")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the benchmark section to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (taken after the benchmarks) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Profiling covers exactly the benchmark work below; the files are
	// written once the timed section ends, so profile collection never
	// perturbs the emitted metrics document.  The memprofile defer is
	// registered first so that (LIFO) the CPU profile stops before the
	// heap-profile GC and serialization run — they must not appear as a
	// tail in the CPU samples.
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the final live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "bench: memprofile: %v\n", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("bench: cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("bench: cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	ctx := context.Background()
	cfg := core.DefaultConfig()
	params := attack.DefaultParams()
	rep := BenchReport{Version: server.Version()}
	for _, d := range []struct {
		name string
		dst  *any
	}{
		{"ipc", &rep.IPC},
		{"fig9", &rep.Fig9},
		{"fig10", &rep.Fig10},
		{"fig11", &rep.Fig11},
	} {
		res, err := server.Run(ctx, d.name, cfg, params, *workers)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", d.name, err)
		}
		*d.dst = res
	}
	if !*noSim {
		sim, err := measureSim(*lanes)
		if err != nil {
			return fmt.Errorf("bench: sim: %w", err)
		}
		rep.Sim = sim
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *jsonOut {
		b, err := server.Encode(rep)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	} else {
		ipc := rep.IPC.(server.IPCResponse)
		fmt.Fprintf(w, "Fig. 7: mean runahead speedup %.2f%% over %d kernels\n",
			(ipc.MeanSpeedup-1)*100, len(ipc.Rows))
		fig9 := rep.Fig9.(core.AttackResult)
		fmt.Fprintf(w, "Fig. 9: leaked=%v best_idx=%d contrast=%d/%d episodes=%d\n",
			fig9.Leaked, fig9.BestIdx, fig9.Median, fig9.BestLat, fig9.Stats.RunaheadEpisodes)
		fig10 := rep.Fig10.(server.Fig10Response)
		fmt.Fprintf(w, "Fig. 10: N1=%d N2=%d N3=%d\n", fig10.N1.N, fig10.N2.N, fig10.N3.N)
		fig11 := rep.Fig11.(core.Fig11Result)
		fmt.Fprintf(w, "Fig. 11: runahead leaked=%v, no-runahead leaked=%v\n",
			fig11.Runahead.Leaked, fig11.NoRunahead.Leaked)
		if rep.Sim != nil {
			fmt.Fprintf(w, "Sim: %.2fM sim_cycles/s, %d allocs/op, %d B/op (%d cycles/run × %d runs)\n",
				rep.Sim.SimCyclesPerSec/1e6, rep.Sim.AllocsPerOp, rep.Sim.BytesPerOp,
				rep.Sim.CyclesPerRun, rep.Sim.Runs)
			fmt.Fprintf(w, "Sim (batched ×%d): %.2fM sim_cycles/s aggregate, %d allocs/op, %d B/op\n",
				rep.Sim.BatchLanes, rep.Sim.BatchSimCyclesPerSec/1e6,
				rep.Sim.BatchAllocsPerOp, rep.Sim.BatchBytesPerOp)
		}
	}
	if *gatePath != "" {
		if rep.Sim == nil {
			return fmt.Errorf("bench: --gate requires the sim section (drop --no-sim)")
		}
		return gate(rep.Sim, *gatePath, *tol)
	}
	return nil
}
