package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"specrun/internal/attack"
	"specrun/internal/core"
	"specrun/internal/server"
)

// BenchReport is the stable JSON document `specrun bench --json` emits: the
// Fig. 7/9/10/11 benchmark metrics of the paper, each in exactly the shape
// the corresponding POST /v1/run/{driver} endpoint returns.  CI uploads it
// as an artifact on every run, seeding the perf trajectory.
type BenchReport struct {
	Version string `json:"version"`
	IPC     any    `json:"ipc"`   // Fig. 7 rows + mean speedup
	Fig9    any    `json:"fig9"`  // PHT PoC probe sweep
	Fig10   any    `json:"fig10"` // N1/N2/N3 transient windows
	Fig11   any    `json:"fig11"` // beyond-the-ROB leak, both machines
}

// runBench implements `specrun bench`: run the four benchmark drivers on the
// Table 1 machine and emit their metrics as one document.
//
//	specrun bench --json --out bench.json
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the canonical JSON document (default: human summary)")
	out := fs.String("out", "", "output file (default stdout)")
	workers := fs.Int("workers", 0, "worker goroutines for the multi-run drivers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := context.Background()
	cfg := core.DefaultConfig()
	params := attack.DefaultParams()
	rep := BenchReport{Version: server.Version()}
	for _, d := range []struct {
		name string
		dst  *any
	}{
		{"ipc", &rep.IPC},
		{"fig9", &rep.Fig9},
		{"fig10", &rep.Fig10},
		{"fig11", &rep.Fig11},
	} {
		res, err := server.Run(ctx, d.name, cfg, params, *workers)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", d.name, err)
		}
		*d.dst = res
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *jsonOut {
		b, err := server.Encode(rep)
		if err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	}

	ipc := rep.IPC.(server.IPCResponse)
	fmt.Fprintf(w, "Fig. 7: mean runahead speedup %.2f%% over %d kernels\n",
		(ipc.MeanSpeedup-1)*100, len(ipc.Rows))
	fig9 := rep.Fig9.(core.AttackResult)
	fmt.Fprintf(w, "Fig. 9: leaked=%v best_idx=%d contrast=%d/%d episodes=%d\n",
		fig9.Leaked, fig9.BestIdx, fig9.Median, fig9.BestLat, fig9.Stats.RunaheadEpisodes)
	fig10 := rep.Fig10.(server.Fig10Response)
	fmt.Fprintf(w, "Fig. 10: N1=%d N2=%d N3=%d\n", fig10.N1.N, fig10.N2.N, fig10.N3.N)
	fig11 := rep.Fig11.(core.Fig11Result)
	fmt.Fprintf(w, "Fig. 11: runahead leaked=%v, no-runahead leaked=%v\n",
		fig11.Runahead.Leaked, fig11.NoRunahead.Leaked)
	return nil
}
