// Command specrun regenerates every table and figure of the SPECRUN paper
// (DAC 2024) on the simulated Table 1 processor.
//
// Usage:
//
//	specrun config             print Table 1
//	specrun ipc                Fig. 7  (normalized IPC, 6 benchmarks)
//	specrun fig9               Fig. 9  (PHT PoC probe sweep)
//	specrun window             Fig. 10 (N1/N2/N3 transient windows)
//	specrun fig11              Fig. 11 (beyond-the-ROB leak)
//	specrun defense            §6      (SL cache + skip-INV mitigations)
//	specrun variants           §4.3/4.4 applicability matrix
//	specrun attack [flags]     one PoC run (see flags below)
//	specrun leak [flags]       extract a multi-byte secret
//	specrun sweep [flags]      user-defined parameter grid on the parallel
//	                           sweep engine (JSON/CSV output)
//	specrun fuzz [flags]       differential fuzzing campaign: random programs
//	                           in lockstep on the reference interpreter and
//	                           the OoO pipeline across the config matrix
//	specrun bench [flags]      Fig. 7/9/10/11 benchmark metrics as one stable
//	                           JSON document (the CI perf artifact)
//	specrun serve [flags]      simulation-as-a-service HTTP API with a
//	                           content-addressed result cache, /metrics and
//	                           structured request logging
//	specrun trace [flags]      per-uop pipeline lifecycle trace of a kernel,
//	                           proggen seed or attack PoC (Kanata, gem5
//	                           O3PipeView, JSONL or occupancy CSV)
//	specrun asm [flags] file   assemble source to the canonical .sprog
//	                           interchange binary
//	specrun disasm [flags] f   canonical disassembly of a .sprog binary
//	                           (round-trips to identical bytes)
//	specrun run [flags] file   execute an interchange program (asm or .sprog)
//	                           and report pipeline statistics
//	specrun version            module version / VCS revision
//	specrun all                everything above, in paper order
//
// The figure subcommands take --format json to emit the same canonical
// JSON document as the corresponding `specrun serve` endpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"specrun/internal/attack"
	"specrun/internal/core"
	"specrun/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "config":
		fmt.Print(core.Table1(core.DefaultConfig()))
	case "ipc":
		err = runIPC(args)
	case "fig9":
		err = runFig9(args)
	case "window":
		err = runWindow(args)
	case "fig11":
		err = runFig11(args)
	case "defense":
		err = runDefense(args)
	case "variants":
		err = runVariants(args)
	case "attack":
		err = runAttack(args)
	case "leak":
		err = runLeak(args)
	case "sweep":
		err = runSweep(args)
	case "fuzz":
		err = runFuzz(args)
	case "bench":
		err = runBench(args)
	case "serve":
		err = runServe(args)
	case "version":
		fmt.Println("specrun", server.Version())
	case "trace":
		err = runTrace(args)
	case "asm":
		err = runAsm(args)
	case "disasm":
		err = runDisasm(args)
	case "run":
		err = runRun(args)
	case "all":
		fmt.Print(core.Table1(core.DefaultConfig()))
		fmt.Println()
		for _, f := range []func([]string) error{runIPC, runFig9, runWindow, runFig11, runDefense, runVariants} {
			if err = f(nil); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "specrun:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: specrun <config|ipc|fig9|window|fig11|defense|variants|attack|leak|sweep|fuzz|bench|serve|version|trace|asm|disasm|run|all> [flags]`)
}

// figureFormat parses the --format flag shared by the figure subcommands.
func figureFormat(name string, args []string) (string, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	format := fs.String("format", "table", "table | json (json matches the HTTP API response body)")
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	switch *format {
	case "table", "json":
		return *format, nil
	}
	return "", fmt.Errorf("%s: unknown format %q", name, *format)
}

// printDriverJSON runs a server driver on the default configuration and
// writes its canonical encoding — byte-identical to the HTTP response body
// of POST /v1/run/{driver} with an empty request.
func printDriverJSON(driver string) error {
	res, err := server.Run(context.Background(), driver, core.DefaultConfig(), attack.DefaultParams(), 0)
	if err != nil {
		return err
	}
	b, err := server.Encode(res)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}

func runIPC(args []string) error {
	format, err := figureFormat("ipc", args)
	if err != nil {
		return err
	}
	if format == "json" {
		return printDriverJSON("ipc")
	}
	rows, err := core.RunIPCComparison(core.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Print(core.FormatIPC(rows))
	return nil
}

func runFig9(args []string) error {
	format, err := figureFormat("fig9", args)
	if err != nil {
		return err
	}
	if format == "json" {
		return printDriverJSON("fig9")
	}
	r, err := core.RunFig9(core.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Println("Fig. 9: probe access time after SPECRUN (secret byte 86)")
	fmt.Print(core.FormatProbe(r, 12))
	return nil
}

func runWindow(args []string) error {
	format, err := figureFormat("window", args)
	if err != nil {
		return err
	}
	if format == "json" {
		return printDriverJSON("fig10")
	}
	n1, n2, n3, err := core.RunFig10(core.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Print(core.FormatWindows(n1, n2, n3))
	return nil
}

func runFig11(args []string) error {
	format, err := figureFormat("fig11", args)
	if err != nil {
		return err
	}
	if format == "json" {
		return printDriverJSON("fig11")
	}
	r, err := core.RunFig11(core.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Println("Fig. 11: secret access pushed beyond the ROB (300 nops, secret 127)")
	fmt.Println("-- no-runahead machine:")
	fmt.Print(core.FormatProbe(r.NoRunahead, 8))
	fmt.Println("-- runahead machine:")
	fmt.Print(core.FormatProbe(r.Runahead, 8))
	return nil
}

func runDefense(args []string) error {
	format, err := figureFormat("defense", args)
	if err != nil {
		return err
	}
	if format == "json" {
		return printDriverJSON("defense")
	}
	d, err := core.RunDefense(core.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Print(core.FormatDefense(d))
	return nil
}

func runVariants(args []string) error {
	format, err := figureFormat("variants", args)
	if err != nil {
		return err
	}
	if format == "json" {
		return printDriverJSON("variants")
	}
	rows, err := core.RunVariantMatrix(core.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Print(core.FormatVariants(rows))
	return nil
}

func attackFlags(args []string) (attack.Params, core.Config, error) {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	variant := fs.String("variant", "pht", "pht | btb | rsb-overwrite | rsb-flush")
	mode := fs.String("runahead", "original", "none | original | precise | vector")
	secure := fs.Bool("secure", false, "enable the §6 SL-cache defense")
	skipINV := fs.Bool("skipinv", false, "enable the skip-INV-branch restriction")
	pad := fs.Int("pad", 0, "nops between branch and secret access (Fig. 11)")
	secret := fs.Int("secret", 86, "secret byte value to plant")
	if err := fs.Parse(args); err != nil {
		return attack.Params{}, core.Config{}, err
	}
	p := attack.DefaultParams()
	p.Secret = []byte{byte(*secret)}
	p.NopPad = *pad
	if err := p.Variant.UnmarshalText([]byte(*variant)); err != nil {
		return p, core.Config{}, err
	}
	cfg := core.DefaultConfig()
	if err := cfg.Runahead.Kind.UnmarshalText([]byte(*mode)); err != nil {
		return p, cfg, err
	}
	cfg.Secure.Enabled = *secure
	cfg.Runahead.SkipINVBranch = *skipINV
	return p, cfg, nil
}

func runAttack(args []string) error {
	p, cfg, err := attackFlags(args)
	if err != nil {
		return err
	}
	r, err := core.RunAttack(cfg, p)
	if err != nil {
		return err
	}
	fmt.Printf("variant=%s episodes=%d INV-branches=%d\n",
		p.Variant, r.Stats.RunaheadEpisodes, r.Stats.INVBranches)
	fmt.Print(core.FormatProbe(r, 12))
	return nil
}

func runLeak(args []string) error {
	fs := flag.NewFlagSet("leak", flag.ContinueOnError)
	secret := fs.String("text", "SPECRUN", "secret string to plant and extract")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := attack.DefaultParams()
	p.Secret = []byte(*secret)
	got, results, err := attack.LeakSecret(core.DefaultConfig(), p)
	if err != nil {
		return err
	}
	for i, r := range results {
		status := "miss"
		if r.Leaked {
			status = "hit"
		}
		fmt.Printf("byte %2d: %3d %q  (%s, lat %d vs median %d)\n",
			i, got[i], string(rune(got[i])), status, r.BestLat, r.Median)
	}
	fmt.Printf("recovered secret: %q\n", string(got))
	return nil
}
