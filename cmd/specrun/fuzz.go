package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"specrun/internal/difftest"
	"specrun/internal/leak"
	"specrun/internal/prog"
	"specrun/internal/server"
	"specrun/internal/sweep"
)

// runFuzz implements `specrun fuzz`: a differential fuzzing campaign that
// runs random proggen programs in lockstep on the reference interpreter and
// the out-of-order pipeline across the runahead × secure × ROB matrix,
// checking that speculation stays architecturally invisible.  Divergent
// seeds are minimized into reproducers fit for a regression table.
//
//	specrun fuzz --seeds 2000 --matrix              full config matrix
//	specrun fuzz --duration 30s --json              time-boxed, JSON report
func runFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	seeds := fs.Int("seeds", 1000, "seeds per campaign round")
	base := fs.Int64("seed-base", 1, "first seed")
	matrix := fs.Bool("matrix", false, "full runahead×secure×ROB matrix (default: quick 8-config set)")
	bodyLen := fs.Int("len", 0, "generated program body length (0 = generator default)")
	duration := fs.Duration("duration", 0, "keep fuzzing fresh seed rounds until this wall-clock budget is spent")
	workers := fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	lanes := fs.Int("lanes", 1, "machines per lockstep batch within a seed's config matrix (reports are lane-count invariant)")
	noShrink := fs.Bool("no-shrink", false, "report divergences without minimizing them")
	interleave := fs.Bool("interleave", false, "cross-run state-leak hunt: run A, B, A' on one reused machine and require A == A'")
	leaks := fs.Bool("leaks", false, "microarchitectural leak oracle: run each program twice with two secret valuations and diff the speculative observation traces")
	jsonOut := fs.Bool("json", false, "emit the campaign report as canonical JSON (matches POST /v1/run/fuzz)")
	quiet := fs.Bool("quiet", false, "suppress the progress line on stderr")
	reproDir := fs.String("repro-dir", "", "save each minimized reproducer as .sprog binary + .asm disassembly under this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := difftest.CampaignSpec{
		Seeds:      *seeds,
		SeedBase:   *base,
		Len:        *bodyLen,
		NoShrink:   *noShrink,
		Interleave: *interleave,
		Leaks:      *leaks,
	}
	if *matrix {
		spec.Matrix = "full"
	}
	if spec.Leaks && spec.Interleave {
		return fmt.Errorf("fuzz: --leaks and --interleave are mutually exclusive oracles")
	}
	// Resolve defaults up front: duration mode advances SeedBase by
	// spec.Seeds each round, which must be the effective count, not an
	// unset zero (or every round would re-fuzz the same seed range).
	spec = spec.WithDefaults()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := sweep.Options{Workers: *workers}
	if !*quiet {
		opt.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rfuzz: %d/%d seeds", done, total)
		}
	}

	if spec.Leaks {
		return runLeakFuzz(ctx, spec, opt, *lanes, *duration, *jsonOut, *quiet, *reproDir)
	}

	// Duration mode runs successive rounds over fresh seed ranges; a single
	// round otherwise.  The merged report keeps per-round determinism: the
	// same seed range always produces the same rows.  A cancelled campaign
	// (Ctrl-C) still yields its partial report — divergences already found
	// must reach the user, not die with the interrupt.
	start := time.Now()
	report, runErr := difftest.RunLanes(ctx, spec, opt, *lanes)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	for runErr == nil && *duration > 0 && time.Since(start) < *duration && ctx.Err() == nil {
		spec.SeedBase += int64(spec.Seeds)
		var next difftest.Report
		next, runErr = difftest.RunLanes(ctx, spec, opt, *lanes)
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		report = report.Merge(next)
	}

	if report.Configs == 0 {
		return runErr // the campaign never started (validation failure)
	}
	var repros []*difftest.Reproducer
	for _, d := range report.Divergences {
		repros = append(repros, d.Minimized)
	}
	if err := saveRepros(*reproDir, repros); err != nil {
		return err
	}
	if *jsonOut {
		b, err := server.Encode(report)
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
	} else {
		printFuzzReport(report)
	}
	if runErr != nil {
		return runErr
	}
	if !report.Clean {
		return fmt.Errorf("fuzz: %d divergences across %d runs", len(report.Divergences), report.Runs)
	}
	return nil
}

// runLeakFuzz drives the microarchitectural leak oracle (--leaks).  Leaks
// are findings, not failures — a leaky insecure configuration is the
// behaviour the paper documents — so the exit status reflects only oracle
// errors (run_error / seq_divergence).
func runLeakFuzz(ctx context.Context, spec difftest.CampaignSpec, opt sweep.Options, lanes int, duration time.Duration, jsonOut, quiet bool, reproDir string) error {
	start := time.Now()
	report, runErr := leak.RunLanes(ctx, spec, opt, lanes)
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
	for runErr == nil && duration > 0 && time.Since(start) < duration && ctx.Err() == nil {
		spec.SeedBase += int64(spec.Seeds)
		var next leak.Report
		next, runErr = leak.RunLanes(ctx, spec, opt, lanes)
		if !quiet {
			fmt.Fprintln(os.Stderr)
		}
		report = report.Merge(next)
	}

	if report.Configs == 0 {
		return runErr
	}
	var repros []*difftest.Reproducer
	for _, f := range report.Findings {
		repros = append(repros, f.Minimized)
	}
	if err := saveRepros(reproDir, repros); err != nil {
		return err
	}
	if jsonOut {
		b, err := server.Encode(report)
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
	} else {
		printLeakReport(report)
	}
	if runErr != nil {
		return runErr
	}
	if !report.Clean {
		return fmt.Errorf("fuzz: %d oracle errors across %d runs", report.Errors, report.Runs)
	}
	return nil
}

// saveRepros writes each minimized reproducer's interchange artifacts —
// repro-seed<N>.sprog (canonical binary) and repro-seed<N>.asm (its
// disassembly) — under dir.  Reproducers are deduplicated by seed; a nil or
// artifact-less reproducer is skipped.  No-op when dir is empty.
func saveRepros(dir string, repros []*difftest.Reproducer) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	seen := make(map[int64]bool)
	for _, r := range repros {
		if r == nil || len(r.Sprog) == 0 || seen[r.Seed] {
			continue
		}
		seen[r.Seed] = true
		stem := filepath.Join(dir, fmt.Sprintf("repro-seed%d", r.Seed))
		if err := os.WriteFile(stem+prog.Ext, r.Sprog, 0o644); err != nil {
			return err
		}
		text, err := prog.Disassemble(r.Sprog)
		if err != nil {
			return fmt.Errorf("repro seed %d: %v", r.Seed, err)
		}
		if err := os.WriteFile(stem+".asm", []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fuzz: saved %s%s (%d bytes, sha256 %.12s) and %s.asm\n",
			stem, prog.Ext, len(r.Sprog), prog.Hash(r.Sprog), stem)
	}
	return nil
}

// printRepro renders a minimized reproducer: its identity line, the .sprog
// content address, and the reduced program's disassembly.
func printRepro(min *difftest.Reproducer) {
	fmt.Printf("    minimized reproducer: seed=%d len=%d options=%+v\n",
		min.Seed, min.Options.Len, min.Options)
	if len(min.Sprog) == 0 {
		return
	}
	text, err := prog.Disassemble(min.Sprog)
	if err != nil {
		return
	}
	fmt.Printf("    sprog: %d bytes, sha256 %.12s\n", len(min.Sprog), prog.Hash(min.Sprog))
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		fmt.Printf("      %s\n", line)
	}
}

func printLeakReport(r leak.Report) {
	fmt.Printf("leak oracle: %d seeds × %d configs = %d runs (%s matrix), %d leaks, %d errors\n",
		r.Spec.Seeds, r.Configs, r.Runs, r.Spec.Matrix, r.Leaks, r.Errors)
	fmt.Println("golden attack corpus:")
	fmt.Printf("  %-14s %-24s %8s\n", "program", "config", "result")
	for _, row := range r.Corpus {
		result := "silent"
		switch {
		case row.Error != "":
			result = "ERROR"
		case row.Leak:
			result = "LEAK"
		}
		fmt.Printf("  %-14s %-24s %8s\n", row.Program, row.Config, result)
	}
	fmt.Println("generated seeds:")
	fmt.Printf("  %-24s %8s %8s %8s\n", "config", "runs", "leaks", "errors")
	for _, s := range r.PerConfig {
		fmt.Printf("  %-24s %8d %8d %8d\n", s.Config, s.Runs, s.Leaks, s.Errors)
	}
	for _, f := range r.Findings {
		if f.Kind != leak.KindLeak {
			fmt.Printf("  ERROR seed %d / %s: %s: %s\n", f.Seed, f.Config, f.Kind, f.Detail)
			continue
		}
		fmt.Printf("  leak seed %d / %s: pc=%#x line=%#x via %s\n", f.Seed, f.Config, f.PC, f.Line, f.Event)
		if f.Minimized != nil {
			printRepro(f.Minimized)
		}
	}
}

func printFuzzReport(r difftest.Report) {
	fmt.Printf("differential fuzz: %d seeds × %d configs = %d runs (%s matrix)\n",
		r.Spec.Seeds, r.Configs, r.Runs, r.Spec.Matrix)
	fmt.Printf("%-24s %8s %10s %12s %14s %6s\n", "config", "runs", "divergent", "episodes", "committed", "")
	for _, s := range r.PerConfig {
		status := "ok"
		if s.Divergences > 0 {
			status = "FAIL"
		}
		fmt.Printf("%-24s %8d %10d %12d %14d %6s\n",
			s.Config, s.Runs, s.Divergences, s.Episodes, s.Committed, status)
	}
	if r.Clean {
		fmt.Println("clean: every configuration matched the in-order reference on every seed")
		return
	}
	fmt.Printf("\n%d divergences:\n", len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Printf("  seed %d / %s: %s: %s\n", d.Seed, d.Config, d.Kind, d.Detail)
		if d.Minimized != nil {
			printRepro(d.Minimized)
		}
	}
}
