package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"specrun/internal/asm"
	"specrun/internal/attack"
	"specrun/internal/core"
	"specrun/internal/cpu"
	"specrun/internal/proggen"
	"specrun/internal/trace"
	"specrun/internal/workload"
)

// runTrace implements `specrun trace`: render any workload kernel, random
// proggen program or attack PoC as a per-uop pipeline lifecycle trace.
//
//	specrun trace --workload Gems --format kanata --out gems.kanata
//	specrun trace --attack pht --format o3 --window 2000:4000
//	specrun trace --seed 7 --format jsonl | jq .stage
//
// Formats: kanata (Konata pipeline viewer), o3 (gem5 O3PipeView), jsonl
// (one event per line), csv (per-cycle occupancy samples — the sampler,
// not the lifecycle tracer).  --window start:end keeps only uops fetched
// in that cycle interval (a bare number means [0,n)), following each kept
// uop to retirement or squash.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	bench := fs.String("workload", "", "Fig. 7 kernel to trace (default Gems)")
	seed := fs.Int64("seed", -1, "trace the proggen random program with this seed instead")
	attackVar := fs.String("attack", "", "trace an attack PoC: pht | btb | rsb-overwrite | rsb-flush")
	format := fs.String("format", "kanata", "kanata | o3 | jsonl | csv (csv = occupancy samples)")
	window := fs.String("window", "", "cycle window start:end (or a bare end) filtering on fetch cycle")
	configArg := fs.String("config", "", "partial config overlay: inline JSON or a path to a JSON file")
	out := fs.String("out", "", "output file (default stdout)")
	maxCycles := fs.Uint64("max-cycles", 50_000_000, "simulation budget")
	every := fs.Uint64("every", 50, "cycles between samples (csv format only)")
	noRA := fs.Bool("no-runahead", false, "trace the baseline (no-runahead) machine")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	if *noRA {
		cfg = core.BaselineConfig()
	}
	if *configArg != "" {
		if err := overlayConfig(&cfg, *configArg); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}

	prog, name, err := traceProgram(*bench, *seed, *attackVar)
	if err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	m := core.NewMachine(cfg, prog)
	var enc trace.Encoder
	if *format == "csv" {
		if *window != "" {
			return fmt.Errorf("trace: --window applies to lifecycle formats, not csv occupancy samples")
		}
		m.SetSampler(*every, cpu.CSVSampler(w))
	} else {
		e, ok := trace.NewEncoder(*format, w)
		if !ok {
			return fmt.Errorf("trace: unknown format %q (kanata | o3 | jsonl | csv)", *format)
		}
		if *window != "" {
			start, end, err := parseWindow(*window)
			if err != nil {
				return err
			}
			e = trace.Window(e, start, end)
		}
		enc = e
		m.SetTracer(enc.Event)
	}

	if err := m.Run(*maxCycles); err != nil && !errors.Is(err, cpu.ErrMaxCycles) {
		return err
	}
	if enc != nil {
		if err := enc.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "traced %s: %d cycles, %d committed, %d episodes\n",
		name, m.Stats().Cycles, m.Stats().Committed, m.Stats().RunaheadEpisodes)
	return nil
}

// traceProgram picks the program to trace; the selectors are mutually
// exclusive and default to the Gems kernel.
func traceProgram(bench string, seed int64, attackVar string) (*asm.Program, string, error) {
	selectors := 0
	for _, set := range []bool{bench != "", seed >= 0, attackVar != ""} {
		if set {
			selectors++
		}
	}
	if selectors > 1 {
		return nil, "", fmt.Errorf("trace: --workload, --seed and --attack are mutually exclusive")
	}
	switch {
	case attackVar != "":
		p := attack.DefaultParams()
		if err := p.Variant.UnmarshalText([]byte(attackVar)); err != nil {
			return nil, "", err
		}
		prog, _, err := attack.Build(p)
		if err != nil {
			return nil, "", err
		}
		return prog, "attack/" + attackVar, nil
	case seed >= 0:
		return proggen.Generate(seed, proggen.DefaultOptions()), fmt.Sprintf("proggen/%d", seed), nil
	default:
		if bench == "" {
			bench = "Gems"
		}
		k, err := workload.ByName(bench)
		if err != nil {
			return nil, "", err
		}
		return k.Build(), k.Name, nil
	}
}

// overlayConfig applies a partial JSON config document — inline, or read
// from a file when arg doesn't look like JSON — over cfg, the same overlay
// semantics as the HTTP API's "config" field.
func overlayConfig(cfg *core.Config, arg string) error {
	data := []byte(arg)
	if !strings.HasPrefix(strings.TrimSpace(arg), "{") {
		b, err := os.ReadFile(arg)
		if err != nil {
			return err
		}
		data = b
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(cfg); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	*cfg = core.Normalize(*cfg)
	return core.Validate(*cfg)
}

// parseWindow parses "start:end" (or a bare "end", meaning [0,end)).
func parseWindow(s string) (start, end uint64, err error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		end, err = strconv.ParseUint(s, 10, 64)
		return 0, end, err
	}
	if lo != "" {
		if start, err = strconv.ParseUint(lo, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("trace: bad window %q: %w", s, err)
		}
	}
	if hi != "" {
		if end, err = strconv.ParseUint(hi, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("trace: bad window %q: %w", s, err)
		}
	}
	if end != 0 && end <= start {
		return 0, 0, fmt.Errorf("trace: empty window %q", s)
	}
	return start, end, nil
}
