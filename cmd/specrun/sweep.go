package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"specrun/internal/attack"
	"specrun/internal/core"
	"specrun/internal/runahead"
	"specrun/internal/sweep"
	"specrun/internal/workload"
)

// runSweep implements `specrun sweep`: a user-defined parameter grid
// (ROB size × runahead kind × workload kernel, or × Spectre variant ×
// secret byte in attack mode) expanded into independent jobs and sharded
// across the sweep engine, with JSON/CSV output for downstream plotting.
//
//	specrun sweep --rob 64,128,256 --runahead none,original,precise,vector --workloads all
//	specrun sweep --mode attack --runahead original,precise --variants pht,btb --secrets 86,127 --pad 300 --format csv
func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	mode := fs.String("mode", "ipc", "ipc | attack")
	robs := fs.String("rob", "256", "comma-separated ROB sizes")
	kinds := fs.String("runahead", "none,original", "comma-separated runahead kinds (none|original|precise|vector)")
	workloads := fs.String("workloads", "all", "ipc mode: comma-separated kernels, or 'all'")
	variants := fs.String("variants", "pht", "attack mode: comma-separated Spectre variants (pht|btb|rsb-overwrite|rsb-flush)")
	secrets := fs.String("secrets", "86", "attack mode: comma-separated secret byte values")
	pad := fs.Int("pad", 0, "attack mode: nops between branch and secret access")
	secure := fs.Bool("secure", false, "enable the §6 SL-cache defense on every grid point")
	workers := fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	format := fs.String("format", "table", "table | json | csv")
	out := fs.String("out", "", "output file (default stdout)")
	quiet := fs.Bool("quiet", false, "suppress the progress line on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *format {
	case "table", "json", "csv":
	default:
		return fmt.Errorf("sweep: unknown format %q", *format)
	}
	axes, err := sweepAxes(*mode, *robs, *kinds, *workloads, *variants, *secrets)
	if err != nil {
		return err
	}
	points := sweep.Expand(axes)
	if len(points) == 0 {
		return fmt.Errorf("sweep: empty grid")
	}

	// Ctrl-C cancels the sweep: running jobs finish, queued jobs never start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := sweep.Options{Workers: *workers}
	if !*quiet {
		opt.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d jobs", done, total)
		}
	}

	var cols []string
	var rows []map[string]any
	switch *mode {
	case "ipc":
		cols, rows, err = sweepIPC(ctx, points, *secure, opt)
	case "attack":
		cols, rows, err = sweepAttack(ctx, points, *pad, *secure, opt)
	default:
		return fmt.Errorf("sweep: unknown mode %q", *mode)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr) // terminate the \r progress line
	}
	// Name each failing grid point on stderr; the error column carries the
	// same text for machine consumers.
	for _, e := range flattenErrs(err) {
		if je, ok := e.(*sweep.JobError); ok {
			fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", sweep.FormatPoint(axes, points[je.Index]), je.Err)
		}
	}
	if rows != nil {
		w := io.Writer(os.Stdout)
		var f *os.File
		if *out != "" {
			var ferr error
			if f, ferr = os.Create(*out); ferr != nil {
				return ferr
			}
			w = f
		}
		werr := writeSweep(w, *format, cols, rows)
		if f != nil {
			// A failed close loses buffered rows; it must not report success.
			if cerr := f.Close(); cerr != nil {
				werr = errors.Join(werr, cerr)
			}
		}
		if werr != nil {
			return werr
		}
	}
	return err
}

// flattenErrs unwraps a joined error into its parts (nil → none).
func flattenErrs(err error) []error {
	if err == nil {
		return nil
	}
	if m, ok := err.(interface{ Unwrap() []error }); ok {
		return m.Unwrap()
	}
	return []error{err}
}

// sweepAxes assembles the grid for a mode, validating every axis value up
// front so a typo fails before any simulation starts.
func sweepAxes(mode, robs, kinds, workloadsCSV, variantsCSV, secretsCSV string) ([]sweep.Axis, error) {
	robAxis, err := sweep.ParseAxis("rob", robs)
	if err != nil {
		return nil, err
	}
	for _, v := range robAxis.Values {
		if n, err := strconv.Atoi(v); err != nil || n <= 0 {
			return nil, fmt.Errorf("sweep: bad ROB size %q", v)
		}
	}
	kindAxis, err := sweep.ParseAxis("runahead", kinds)
	if err != nil {
		return nil, err
	}
	for _, v := range kindAxis.Values {
		if _, err := parseRunaheadKind(v); err != nil {
			return nil, err
		}
	}
	axes := []sweep.Axis{robAxis, kindAxis}
	switch mode {
	case "ipc":
		if workloadsCSV == "all" {
			var names []string
			for _, k := range workload.Kernels() {
				names = append(names, k.Name)
			}
			workloadsCSV = strings.Join(names, ",")
		}
		wAxis, err := sweep.ParseAxis("workload", workloadsCSV)
		if err != nil {
			return nil, err
		}
		for _, v := range wAxis.Values {
			if _, err := workload.ByName(v); err != nil {
				return nil, err
			}
		}
		axes = append(axes, wAxis)
	case "attack":
		vAxis, err := sweep.ParseAxis("variant", variantsCSV)
		if err != nil {
			return nil, err
		}
		for _, v := range vAxis.Values {
			if _, err := parseVariant(v); err != nil {
				return nil, err
			}
		}
		sAxis, err := sweep.ParseAxis("secret", secretsCSV)
		if err != nil {
			return nil, err
		}
		for _, v := range sAxis.Values {
			if n, err := strconv.Atoi(v); err != nil || n < 0 || n > 255 {
				return nil, fmt.Errorf("sweep: secret byte %q out of range", v)
			}
		}
		axes = append(axes, vAxis, sAxis)
	}
	return axes, nil
}

// pointConfig builds the machine configuration for one grid point.
func pointConfig(p sweep.Point, secure bool) (core.Config, error) {
	cfg := core.DefaultConfig()
	rob, err := strconv.Atoi(p["rob"])
	if err != nil {
		return cfg, fmt.Errorf("sweep: bad ROB size %q", p["rob"])
	}
	cfg.ROBSize = rob
	kind, err := parseRunaheadKind(p["runahead"])
	if err != nil {
		return cfg, err
	}
	cfg.Runahead.Kind = kind
	cfg.Secure.Enabled = secure
	return cfg, nil
}

func sweepIPC(ctx context.Context, points []sweep.Point, secure bool, opt sweep.Options) ([]string, []map[string]any, error) {
	results, err := sweep.Run(ctx, points, func(_ context.Context, p sweep.Point) (map[string]any, error) {
		cfg, err := pointConfig(p, secure)
		if err != nil {
			return nil, err
		}
		k, err := workload.ByName(p["workload"])
		if err != nil {
			return nil, err
		}
		m, err := core.RunProgram(cfg, k.Build())
		if err != nil {
			return nil, err
		}
		st := m.Stats()
		return map[string]any{
			"cycles":   st.Cycles,
			"insts":    st.Committed,
			"ipc":      st.IPC(),
			"episodes": st.RunaheadEpisodes,
		}, nil
	}, opt)
	cols := []string{"rob", "runahead", "workload", "cycles", "insts", "ipc", "episodes", "error"}
	return cols, mergeSweepRows(points, results, err), err
}

func sweepAttack(ctx context.Context, points []sweep.Point, pad int, secure bool, opt sweep.Options) ([]string, []map[string]any, error) {
	results, err := sweep.Run(ctx, points, func(_ context.Context, p sweep.Point) (map[string]any, error) {
		cfg, err := pointConfig(p, secure)
		if err != nil {
			return nil, err
		}
		params := attack.DefaultParams()
		params.Variant, err = parseVariant(p["variant"])
		if err != nil {
			return nil, err
		}
		sec, err := strconv.Atoi(p["secret"])
		if err != nil {
			return nil, fmt.Errorf("sweep: bad secret %q", p["secret"])
		}
		params.Secret = []byte{byte(sec)}
		params.NopPad = pad
		r, err := core.RunAttack(cfg, params)
		if err != nil {
			return nil, err
		}
		leakedByte := -1
		if v, ok := r.LeakedByte(); ok {
			leakedByte = int(v)
		}
		return map[string]any{
			"leaked":       r.Leaked,
			"leaked_byte":  leakedByte,
			"best_idx":     r.BestIdx,
			"best_lat":     r.BestLat,
			"median":       r.Median,
			"episodes":     r.Stats.RunaheadEpisodes,
			"inv_branches": r.Stats.INVBranches,
		}, nil
	}, opt)
	cols := []string{"rob", "runahead", "variant", "secret", "leaked", "leaked_byte", "best_idx", "best_lat", "median", "episodes", "inv_branches", "error"}
	return cols, mergeSweepRows(points, results, err), err
}

// mergeSweepRows joins grid points with their metric maps, attaching
// per-job error strings so one failing point doesn't hide the rest.
// Points the engine never ran (cancelled mid-sweep) are marked in the
// error column so downstream tooling can tell them from measured rows.
func mergeSweepRows(points []sweep.Point, results []map[string]any, err error) []map[string]any {
	perJob := map[int]string{}
	for _, e := range flattenErrs(err) {
		if je, ok := e.(*sweep.JobError); ok {
			perJob[je.Index] = je.Err.Error()
		}
	}
	rows := make([]map[string]any, len(points))
	for i, p := range points {
		errCell := perJob[i]
		if errCell == "" && results[i] == nil && err != nil {
			errCell = "cancelled"
		}
		row := map[string]any{"error": errCell}
		for k, v := range p {
			row[k] = v
		}
		for k, v := range results[i] {
			row[k] = v
		}
		rows[i] = row
	}
	return rows
}

// writeSweep renders the merged rows as an aligned table, JSON, or CSV.
func writeSweep(w io.Writer, format string, cols []string, rows []map[string]any) error {
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	case "csv":
		cw := csv.NewWriter(w)
		if err := cw.Write(cols); err != nil {
			return err
		}
		for _, row := range rows {
			rec := make([]string, len(cols))
			for i, c := range cols {
				rec[i] = cellString(row[c])
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	case "table":
		widths := make([]int, len(cols))
		for i, c := range cols {
			widths[i] = len(c)
		}
		cells := make([][]string, len(rows))
		for r, row := range rows {
			cells[r] = make([]string, len(cols))
			for i, c := range cols {
				s := cellString(row[c])
				cells[r][i] = s
				if len(s) > widths[i] {
					widths[i] = len(s)
				}
			}
		}
		printRow := func(rec []string) {
			for i, s := range rec {
				fmt.Fprintf(w, "%-*s  ", widths[i], s)
			}
			fmt.Fprintln(w)
		}
		printRow(cols)
		for _, rec := range cells {
			printRow(rec)
		}
		return nil
	}
	return fmt.Errorf("sweep: unknown format %q", format)
}

func cellString(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case float64:
		return strconv.FormatFloat(x, 'f', 4, 64)
	default:
		return fmt.Sprint(v)
	}
}

// parseRunaheadKind maps a CLI token to a runahead kind.
func parseRunaheadKind(s string) (runahead.Kind, error) {
	switch s {
	case "none":
		return runahead.KindNone, nil
	case "original":
		return runahead.KindOriginal, nil
	case "precise":
		return runahead.KindPrecise, nil
	case "vector":
		return runahead.KindVector, nil
	}
	return 0, fmt.Errorf("unknown runahead mode %q", s)
}

// parseVariant maps a CLI token to a Spectre variant.
func parseVariant(s string) (attack.Variant, error) {
	switch s {
	case "pht":
		return attack.VariantPHT, nil
	case "btb":
		return attack.VariantBTB, nil
	case "rsb-overwrite":
		return attack.VariantRSBOverwrite, nil
	case "rsb-flush":
		return attack.VariantRSBFlush, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}
