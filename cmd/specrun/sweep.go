package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"specrun/internal/server"
	"specrun/internal/sweep"
)

// runSweep implements `specrun sweep`: a user-defined parameter grid
// (ROB size × runahead kind × workload kernel, or × Spectre variant ×
// secret byte in attack mode) expanded into independent jobs and sharded
// across the sweep engine, with JSON/CSV output for downstream plotting.
// The grid logic lives in internal/server (SweepSpec), which also backs
// POST /v1/sweep — the CLI and the HTTP API run identical grids.
//
//	specrun sweep --rob 64,128,256 --runahead none,original,precise,vector --workloads all
//	specrun sweep --mode attack --runahead original,precise --variants pht,btb --secrets 86,127 --pad 300 --format csv
func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	mode := fs.String("mode", "ipc", "ipc | attack")
	robs := fs.String("rob", "256", "comma-separated ROB sizes")
	kinds := fs.String("runahead", "none,original", "comma-separated runahead kinds (none|original|precise|vector)")
	workloads := fs.String("workloads", "all", "ipc mode: comma-separated kernels, or 'all'")
	variants := fs.String("variants", "pht", "attack mode: comma-separated Spectre variants (pht|btb|rsb-overwrite|rsb-flush)")
	secrets := fs.String("secrets", "86", "attack mode: comma-separated secret byte values")
	pad := fs.Int("pad", 0, "attack mode: nops between branch and secret access")
	secure := fs.Bool("secure", false, "enable the §6 SL-cache defense on every grid point")
	workers := fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	lanes := fs.Int("lanes", 1, "ipc mode: machines per lockstep batch (results are lane-count invariant)")
	format := fs.String("format", "table", "table | json | csv")
	out := fs.String("out", "", "output file (default stdout)")
	quiet := fs.Bool("quiet", false, "suppress the progress line on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *format {
	case "table", "json", "csv":
	default:
		return fmt.Errorf("sweep: unknown format %q", *format)
	}
	spec := server.SweepSpec{
		Mode:      *mode,
		Runahead:  splitCSV(*kinds),
		Workloads: splitCSV(*workloads),
		Variants:  splitCSV(*variants),
		Pad:       *pad,
		Secure:    *secure,
		Workers:   *workers,
		Lanes:     *lanes,
	}
	var err error
	if spec.ROB, err = parseIntCSV("ROB size", *robs); err != nil {
		return err
	}
	if spec.Secrets, err = parseIntCSV("secret byte", *secrets); err != nil {
		return err
	}

	// Ctrl-C cancels the sweep: running jobs finish, queued jobs never start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := sweep.Options{Workers: *workers}
	if !*quiet {
		opt.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d jobs", done, total)
		}
	}

	res, axes, err := server.RunSweep(ctx, spec, opt)
	if !*quiet {
		fmt.Fprintln(os.Stderr) // terminate the \r progress line
	}
	if res.Rows == nil {
		return err // the grid never ran: validation failure
	}
	// Name each failing grid point on stderr; the error column carries the
	// same text for machine consumers.
	points := sweep.Expand(axes)
	for _, je := range sweep.Errors(err) {
		fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", sweep.FormatPoint(axes, points[je.Index]), je.Err)
	}
	w := io.Writer(os.Stdout)
	var f *os.File
	if *out != "" {
		var ferr error
		if f, ferr = os.Create(*out); ferr != nil {
			return ferr
		}
		w = f
	}
	werr := writeSweep(w, *format, res.Cols, res.Rows)
	if f != nil {
		// A failed close loses buffered rows; it must not report success.
		if cerr := f.Close(); cerr != nil {
			werr = errors.Join(werr, cerr)
		}
	}
	if werr != nil {
		return werr
	}
	return err
}

// splitCSV splits a comma-separated flag value, dropping empty items.
func splitCSV(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// parseIntCSV parses a comma-separated integer list.
func parseIntCSV(what, s string) ([]int, error) {
	var out []int
	for _, v := range splitCSV(s) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad %s %q", what, v)
		}
		out = append(out, n)
	}
	return out, nil
}

// writeSweep renders the merged rows as an aligned table, JSON, or CSV.
func writeSweep(w io.Writer, format string, cols []string, rows []map[string]any) error {
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	case "csv":
		cw := csv.NewWriter(w)
		if err := cw.Write(cols); err != nil {
			return err
		}
		for _, row := range rows {
			rec := make([]string, len(cols))
			for i, c := range cols {
				rec[i] = cellString(row[c])
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	case "table":
		widths := make([]int, len(cols))
		for i, c := range cols {
			widths[i] = len(c)
		}
		cells := make([][]string, len(rows))
		for r, row := range rows {
			cells[r] = make([]string, len(cols))
			for i, c := range cols {
				s := cellString(row[c])
				cells[r][i] = s
				if len(s) > widths[i] {
					widths[i] = len(s)
				}
			}
		}
		printRow := func(rec []string) {
			for i, s := range rec {
				fmt.Fprintf(w, "%-*s  ", widths[i], s)
			}
			fmt.Fprintln(w)
		}
		printRow(cols)
		for _, rec := range cells {
			printRow(rec)
		}
		return nil
	}
	return fmt.Errorf("sweep: unknown format %q", format)
}

func cellString(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case float64:
		return strconv.FormatFloat(x, 'f', 4, 64)
	default:
		return fmt.Sprint(v)
	}
}
